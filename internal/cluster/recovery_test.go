package cluster

import (
	"bytes"
	"testing"
	"time"

	"minraid/internal/core"
)

// TestDrainFailLocksLongDonorChain is the regression test for the fixed
// pass count DrainFailLocks used to run: a donor refuses a copy request
// while its own copy of the item is fail-locked, so divergent tables can
// form a chain where each pass unblocks exactly one more donor. With 7
// sites the chain needs 6 passes; the old hard-coded 4 returned
// remaining > 0 on a perfectly healable system.
func TestDrainFailLocksLongDonorChain(t *testing.T) {
	const n = 7
	c := newTestCluster(t, Config{Sites: n, Items: 1})
	// Site k's table (k < n-1) fail-locks sites 0..k for item 0 — its own
	// copy included — so k's donor choice is k+1, which refuses while its
	// own bit is set. Site n-1's table locks 0..n-2 and is itself clean:
	// the only working donor, for site n-2 only, in the first pass.
	for k := 0; k < n-1; k++ {
		for b := 0; b <= k; b++ {
			c.Site(core.SiteID(k)).InjectFailLock(0, core.SiteID(b))
		}
	}
	for b := 0; b < n-1; b++ {
		c.Site(core.SiteID(n-1)).InjectFailLock(0, core.SiteID(b))
	}
	trueUp := make([]bool, n)
	for i := range trueUp {
		trueUp[i] = true
	}
	copiers, remaining, err := c.DrainFailLocks(trueUp, 8)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0 {
		t.Fatalf("drain left %d locks on a healable donor chain (%d copiers ran)", remaining, copiers)
	}
	if copiers < n-1 {
		t.Errorf("only %d copiers ran healing a %d-link chain", copiers, n-1)
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Error(report)
	}
}

// TestRecoveryAnnouncesSilentSites: a recovering site discovers sites
// that never answered its type-1 announcement. Marking them down only in
// its local vector leaves the survivors' nominal vectors divergent until
// their own ack-timeout detection happens to fire; recovery must follow
// up with a type-2 announcement so the whole group converges on what the
// recovery observed.
func TestRecoveryAnnouncesSilentSites(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 4, Items: 5})
	// Site 2 fails silently: no transaction runs, so no survivor detects
	// it and every vector still carries 2 as operational.
	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	// Recovery at 1 saw 2 stay silent and must have announced it; site 0
	// and site 3 learn without any transaction traffic of their own.
	for _, observer := range []core.SiteID{0, 3} {
		st, err := c.Status(observer, false)
		if err != nil {
			t.Fatal(err)
		}
		if st.Vector[2].Status == core.StatusUp {
			t.Errorf("site %d still believes silent site 2 operational after recovery's type-2", observer)
		}
	}
}

// TestType3ChunksLargePayload: with a bounded Type3Batch the endangered
// set travels in several CtrlReplicate pushes instead of one unbounded
// message, and the system still converges to a replicated backup.
func TestType3ChunksLargePayload(t *testing.T) {
	c := newTestCluster(t, Config{Sites: 3, Items: 12, EnableType3: true, Type3Batch: 2})
	failAndDetect(t, c, 1, 0)
	// Writes while 1 is down: fresh at {0, 2}, fail-locked for 1.
	for i := 0; i < 6; i++ {
		if res, _ := c.Exec(0, []core.Op{core.Write(core.ItemID(i), val(i))}); !res.Committed {
			t.Fatal("write failed")
		}
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	// Fail 2: the written items are fresh only at 0 among operational
	// sites, and the type-2 detection triggers chunked type-3 pushes.
	failAndDetect(t, c, 2, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := c.FailLockCount(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("type-3 never refreshed site 1 (still %d fail-locks)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := c.Status(0, false)
	if st.Stats.ControlType3 < 3 {
		t.Errorf("ControlType3 = %d, want >= 3 chunks for 6 endangered items at batch 2", st.Stats.ControlType3)
	}
	res, err := c.Exec(1, []core.Op{core.Read(3)})
	if err != nil || !res.Committed {
		t.Fatalf("read at backup failed: %v %v", res, err)
	}
	if !bytes.Equal(res.Reads[0].Value, val(3)) {
		t.Errorf("backup copy = %q", res.Reads[0].Value)
	}
}

// TestSoloWriteRecordSurvivesWriterRecovery is the regression test for the
// recovery-path wipe: a site that commits writes while falsely believing
// every other site down records their staleness in its own fail-lock table
// alone. Installing a donor's table over it during the writer's next
// type-1 recovery erased that record — the only one in the system — and
// left stale copies unlocked. The per-item versioned merge must keep the
// writer's words wherever its copy is strictly newest, and the post-merge
// lock-sync fan-out must hand them to survivors whose own recovery could
// not have seen them.
func TestSoloWriteRecordSurvivesWriterRecovery(t *testing.T) {
	const ack = 40 * time.Millisecond
	c := newTestCluster(t, Config{Sites: 3, Items: 8, AckTimeout: ack})
	trueUp := []bool{true, true, true}

	// Isolate site 0. Its first write eats the ack timeout and declares
	// sites 1 and 2 failed; later writes commit solo, marking 1 and 2
	// stale on item 0 in site 0's table only. Sites 1 and 2 stay idle, so
	// they never suspect 0.
	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, true)
	var soloVal []byte
	for i := 0; i < 4; i++ {
		v := val(0x50 + i)
		res, err := c.Exec(0, []core.Op{core.Write(0, v)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed {
			soloVal = v
		}
	}
	if soloVal == nil {
		t.Fatal("isolated site never committed a solo write")
	}

	// The writer goes down for real while still cut off, then the network
	// heals and site 1 fail-recovers. Site 1's recovery runs with donor 2
	// only — site 0 is down — so nothing can tell site 1 about item 0's
	// staleness; its session bump is what later convinces site 0 that 1
	// is up again.
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	c.Partition([]core.SiteID{0}, []core.SiteID{1, 2}, false)
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecoverWithRetry(1, ack); err != nil {
		t.Fatal(err)
	}

	// Now the writer recovers. Both donors' tables are empty and their
	// item-0 copies are older than site 0's, so the merge must keep site
	// 0's word; site 1 (up by session bump) must learn it via the
	// lock-sync fan-out, since no later event would ever deliver it.
	if _, err := c.RecoverWithRetry(0, ack); err != nil {
		t.Fatal(err)
	}
	lockedAt := func(site core.SiteID) uint64 {
		t.Helper()
		st, err := c.Status(site, true)
		if err != nil {
			t.Fatal(err)
		}
		return st.FailLocks[0]
	}
	if got := lockedAt(0); got != 0b110 {
		t.Fatalf("writer's table after recovery: item 0 word %#b, want 0b110 (donor install erased the solo-write record?)", got)
	}
	if got := lockedAt(1); got != 0b110 {
		t.Fatalf("site 1's table after lock-sync: item 0 word %#b, want 0b110", got)
	}

	// Site 2 still carries a stale session for site 0's suspicion of it;
	// the standard false-suspicion repair recovers it, and its type-1
	// merge pulls the word from the now-ahead donors.
	if _, err := c.RepairFalseSuspicions(trueUp, ack); err != nil {
		t.Fatal(err)
	}
	report, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit after repair: %s", report)
	}
	if report.StaleCopies == 0 {
		t.Fatal("no locked stale copies tracked: the solo-write record was lost")
	}

	// The record is actionable: the drain refreshes both stale copies and
	// the solo value wins everywhere.
	copiers, remaining, err := c.DrainFailLocks(trueUp, 8)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0 {
		t.Fatalf("%d fail-locks left after drain (%d copiers)", remaining, copiers)
	}
	final, err := c.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !final.OK() || final.StaleCopies != 0 {
		t.Fatalf("post-drain audit: %s", final)
	}
	for s := core.SiteID(0); s < 3; s++ {
		dump, err := c.Dump(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dump[0].Value, soloVal) {
			t.Fatalf("site %d item 0 = %q, want solo-written %q", s, dump[0].Value, soloVal)
		}
	}
}
