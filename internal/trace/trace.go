// Package trace records structured per-transaction events across the
// mini-RAID stack. Every message carries a trace ID (msg.Envelope.Trace)
// that is assigned when a transaction is injected and propagated through
// prepare/commit/copier/clear-fail-locks/control messages; each site
// emits an Event for the protocol phases it executes, and the Recorder
// reconstructs the full span afterwards. The paper reports only mean
// event times (§2.1); spans attribute an individual slow transaction to
// its copier/control/2PC sub-steps.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"minraid/internal/core"
)

// ID identifies one traced activity. Transaction traces use the
// transaction ID directly; cluster-administration activities (fail,
// recover, status) draw from a disjoint range above AdminBase so the two
// never collide.
type ID uint64

// AdminBase is the first trace ID used for non-transaction activities.
const AdminBase ID = 1 << 32

// Protocol phases. Kind carries the detail (message kind, abort reason,
// item count) for a phase; Phase is the event class.
const (
	PhaseInject    = "inject"      // client txn handed to its coordinator
	PhaseCoord     = "coord"       // coordinator-side whole-transaction span
	PhasePrepare   = "prepare"     // participant stages writes, votes
	PhaseCommit    = "commit"      // participant applies staged writes
	PhaseAbort     = "abort"       // transaction aborted (Kind = reason)
	PhaseCopier    = "copier"      // coordinator-side copier sub-span
	PhaseCopyServe = "copy.serve"  // donor serves a copy request
	PhaseClearFL   = "clear.flock" // fail-lock clearing at one holder
	PhaseCtrl1     = "ctrl1"       // type-1 control (recovery)
	PhaseCtrl2     = "ctrl2"       // type-2 control (failure announcement)
	PhaseCtrl3     = "ctrl3"       // type-3 control (re-replication)
	PhaseRead      = "read"        // remote read served
	PhaseScrub     = "scrub"       // background scrubber pass
)

// Event is one structured trace record.
type Event struct {
	TraceID ID
	Site    core.SiteID
	Phase   string
	Kind    string
	At      time.Time
	Dur     time.Duration
}

// String renders one event line.
func (e Event) String() string {
	site := fmt.Sprintf("site %d", e.Site)
	if e.Site == core.ManagingSite {
		site = "manager"
	}
	s := fmt.Sprintf("%-8s %-11s dur=%v", site, e.Phase, e.Dur)
	if e.Kind != "" {
		s += " [" + e.Kind + "]"
	}
	return s
}

// DefaultCapacity bounds the recorder's ring buffer. At roughly ten
// events per transaction this covers several thousand recent
// transactions without unbounded growth under heavy traffic.
const DefaultCapacity = 1 << 16

// Recorder collects events into a bounded ring buffer and counts
// messages per wire kind. All methods are safe for concurrent use and
// are no-ops on a nil receiver, so call sites need no guards when
// tracing is disabled.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	next    int
	wrapped bool
	kinds   map[string]uint64
}

// NewRecorder returns a recorder holding up to capacity events
// (DefaultCapacity if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		events: make([]Event, capacity),
		kinds:  make(map[string]uint64),
	}
}

// Record appends one event, evicting the oldest when full.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events[r.next] = ev
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Emit records a completed phase that began at start: At=start,
// Dur=time since start.
func (r *Recorder) Emit(id ID, site core.SiteID, phase, kind string, start time.Time) {
	if r == nil {
		return
	}
	r.Record(Event{TraceID: id, Site: site, Phase: phase, Kind: kind, At: start, Dur: time.Since(start)})
}

// CountMessage increments the per-message-kind counter. Transports call
// this once per envelope sent.
func (r *Recorder) CountMessage(kind string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.kinds[kind]++
	r.mu.Unlock()
}

// MessageCounts returns a snapshot of the per-kind message counters.
func (r *Recorder) MessageCounts() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.kinds))
	for k, v := range r.kinds {
		out[k] = v
	}
	return out
}

// Events returns a chronological copy of the retained events.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Recorder) snapshotLocked() []Event {
	var out []Event
	if r.wrapped {
		out = make([]Event, 0, len(r.events))
		out = append(out, r.events[r.next:]...)
		out = append(out, r.events[:r.next]...)
	} else {
		out = make([]Event, r.next)
		copy(out, r.events[:r.next])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Span returns every retained event for one trace ID in timestamp order.
func (r *Recorder) Span(id ID) Span {
	if r == nil {
		return Span{ID: id}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := Span{ID: id}
	for _, ev := range r.snapshotLocked() {
		if ev.TraceID == id {
			sp.Events = append(sp.Events, ev)
		}
	}
	return sp
}

// Reset discards all events and counters, keeping capacity.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.next = 0
	r.wrapped = false
	r.kinds = make(map[string]uint64)
	r.mu.Unlock()
}

// Span is the reconstructed timeline of one traced activity.
type Span struct {
	ID     ID
	Events []Event
}

// Start returns the earliest event timestamp (zero if empty).
func (s Span) Start() time.Time {
	if len(s.Events) == 0 {
		return time.Time{}
	}
	return s.Events[0].At
}

// End returns the latest event completion time (At+Dur) across the span.
func (s Span) End() time.Time {
	var end time.Time
	for _, ev := range s.Events {
		if t := ev.At.Add(ev.Dur); t.After(end) {
			end = t
		}
	}
	return end
}

// Duration returns End minus Start.
func (s Span) Duration() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.End().Sub(s.Start())
}

// Phases returns the set of phases present, in first-occurrence order.
func (s Span) Phases() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ev := range s.Events {
		if !seen[ev.Phase] {
			seen[ev.Phase] = true
			out = append(out, ev.Phase)
		}
	}
	return out
}

// Timeline renders the span as one line per event with offsets from the
// span start.
func (s Span) Timeline() string {
	if len(s.Events) == 0 {
		return fmt.Sprintf("trace %d: no events recorded\n", uint64(s.ID))
	}
	start := s.Start()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d: %d events over %v\n", uint64(s.ID), len(s.Events), s.Duration())
	for _, ev := range s.Events {
		fmt.Fprintf(&b, "  +%-12v %s\n", ev.At.Sub(start), ev.String())
	}
	return b.String()
}
