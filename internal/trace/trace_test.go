package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"minraid/internal/core"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{})
	r.Emit(1, 0, PhaseCoord, "", time.Now())
	r.CountMessage("commit")
	r.Reset()
	if r.Events() != nil || r.MessageCounts() != nil {
		t.Error("nil recorder returned data")
	}
	if sp := r.Span(1); len(sp.Events) != 0 {
		t.Error("nil recorder returned span events")
	}
}

func TestSpanReconstruction(t *testing.T) {
	r := NewRecorder(64)
	base := time.Now()
	r.Record(Event{TraceID: 7, Site: core.ManagingSite, Phase: PhaseInject, At: base})
	r.Record(Event{TraceID: 7, Site: 0, Phase: PhaseCoord, At: base.Add(time.Millisecond), Dur: 9 * time.Millisecond})
	r.Record(Event{TraceID: 7, Site: 1, Phase: PhasePrepare, At: base.Add(2 * time.Millisecond), Dur: time.Millisecond})
	r.Record(Event{TraceID: 8, Site: 1, Phase: PhasePrepare, At: base.Add(3 * time.Millisecond)})
	r.Record(Event{TraceID: 7, Site: 1, Phase: PhaseCommit, At: base.Add(5 * time.Millisecond), Dur: time.Millisecond})

	sp := r.Span(7)
	if len(sp.Events) != 4 {
		t.Fatalf("span has %d events", len(sp.Events))
	}
	for i := 1; i < len(sp.Events); i++ {
		if sp.Events[i].At.Before(sp.Events[i-1].At) {
			t.Error("span events not sorted by time")
		}
	}
	if got := sp.Phases(); len(got) != 4 || got[0] != PhaseInject || got[3] != PhaseCommit {
		t.Errorf("Phases = %v", got)
	}
	if sp.Start() != base {
		t.Errorf("Start = %v", sp.Start())
	}
	// End is coord's At+Dur = base+10ms (later than commit's base+6ms).
	if sp.End() != base.Add(10*time.Millisecond) {
		t.Errorf("End = %v, want %v", sp.End(), base.Add(10*time.Millisecond))
	}
	if sp.Duration() != 10*time.Millisecond {
		t.Errorf("Duration = %v", sp.Duration())
	}
	tl := sp.Timeline()
	for _, want := range []string{"trace 7", "inject", "coord", "prepare", "commit", "manager"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		r.Record(Event{TraceID: ID(i), At: base.Add(time.Duration(i))})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.TraceID != ID(6+i) {
			t.Errorf("event %d has trace %d, want %d", i, ev.TraceID, 6+i)
		}
	}
	if sp := r.Span(2); len(sp.Events) != 0 {
		t.Error("evicted trace still visible")
	}
}

func TestMessageCounts(t *testing.T) {
	r := NewRecorder(8)
	r.CountMessage("commit")
	r.CountMessage("commit")
	r.CountMessage("prepare")
	got := r.MessageCounts()
	if got["commit"] != 2 || got["prepare"] != 1 {
		t.Errorf("counts = %v", got)
	}
	got["commit"] = 99
	if r.MessageCounts()["commit"] != 2 {
		t.Error("snapshot aliases internal map")
	}
	r.Reset()
	if len(r.MessageCounts()) != 0 || len(r.Events()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestEmit(t *testing.T) {
	r := NewRecorder(8)
	start := time.Now().Add(-5 * time.Millisecond)
	r.Emit(3, 2, PhaseCopier, "items=4", start)
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	ev := evs[0]
	if ev.TraceID != 3 || ev.Site != 2 || ev.Phase != PhaseCopier || ev.Kind != "items=4" {
		t.Errorf("event = %+v", ev)
	}
	if ev.At != start || ev.Dur < 5*time.Millisecond {
		t.Errorf("At/Dur = %v/%v", ev.At, ev.Dur)
	}
	if !strings.Contains(ev.String(), "items=4") {
		t.Errorf("String = %q", ev.String())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{TraceID: ID(g), At: time.Now()})
				r.CountMessage(fmt.Sprintf("k%d", g%3))
				_ = r.Events()
				_ = r.Span(ID(g))
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, n := range r.MessageCounts() {
		total += n
	}
	if total != 8*500 {
		t.Errorf("lost message counts: %d", total)
	}
}
