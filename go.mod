module minraid

go 1.22
