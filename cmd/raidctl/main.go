// Command raidctl is the managing site for a TCP deployment of raidsrv
// processes: it injects transactions, orders failures and recoveries,
// queries status, and audits consistency.
//
//	raidctl -addrs "0=:7000,1=:7001,m=:7009" status
//	raidctl -addrs ... txn 0 w3=hello r3
//	raidctl -addrs ... fail 1
//	raidctl -addrs ... recover 1
//	raidctl -addrs ... audit -items 50
//	raidctl -addrs ... shutdown
//
// Transaction IDs are derived from the wall clock so separate raidctl
// invocations produce monotonically increasing versions.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"minraid/internal/cli"
	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/msg"
	"minraid/internal/netcfg"
	"minraid/internal/transport"
)

func main() {
	var (
		addrs   = flag.String("addrs", "", "address map: 0=host:port,...,m=host:port (m is this process)")
		items   = flag.Int("items", 50, "database size (needed by audit)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-call timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	addrMap, sites, err := netcfg.ParseAddrs(*addrs)
	if err != nil {
		fatal(err)
	}
	if _, ok := addrMap[core.ManagingSite]; !ok {
		fatal(fmt.Errorf("address map needs an m= entry for the managing site"))
	}

	net, err := transport.NewTCP(transport.TCPConfig{Self: core.ManagingSite, Addrs: addrMap})
	if err != nil {
		fatal(err)
	}
	defer net.Close()
	ep, err := net.Endpoint(core.ManagingSite)
	if err != nil {
		fatal(err)
	}
	ctl := &controller{
		caller: transport.NewCaller(ep, *timeout),
		sites:  sites,
		items:  *items,
	}
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			ctl.caller.Deliver(env)
		}
	}()

	switch args[0] {
	case "status":
		ctl.status()
	case "txn":
		ctl.txn(args[1:])
	case "fail":
		ctl.oneSite(args[1:], ctl.fail)
	case "recover":
		ctl.oneSite(args[1:], ctl.recover)
	case "audit":
		ctl.audit()
	case "shutdown":
		ctl.shutdown()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: raidctl -addrs MAP [flags] {status|txn SITE OPS...|fail SITE|recover SITE|audit|shutdown}")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "raidctl:", err)
	os.Exit(1)
}

// controller is the TCP managing site; it implements cluster.Prober so the
// shared audit runs unchanged over real sockets.
type controller struct {
	caller *transport.Caller
	sites  int
	items  int
}

// Sites implements cluster.Prober.
func (c *controller) Sites() int { return c.sites }

// Items implements cluster.Prober.
func (c *controller) Items() int { return c.items }

// Replicas implements cluster.Prober; the TCP deployment runs the paper's
// fully replicated configuration.
func (c *controller) Replicas() *core.ReplicaMap {
	return core.FullReplication(c.items, c.sites)
}

// Status implements cluster.Prober.
func (c *controller) Status(id core.SiteID, includeFailLocks bool) (*msg.StatusResp, error) {
	reply, err := c.caller.Call(id, &msg.StatusReq{IncludeFailLocks: includeFailLocks})
	if err != nil {
		return nil, fmt.Errorf("status of %s: %w", id, err)
	}
	st, ok := reply.Body.(*msg.StatusResp)
	if !ok {
		return nil, fmt.Errorf("unexpected reply %s", reply.Body.Kind())
	}
	return st, nil
}

// Dump implements cluster.Prober.
func (c *controller) Dump(id core.SiteID) ([]core.ItemVersion, error) {
	reply, err := c.caller.Call(id, &msg.DumpReq{First: 0, Last: core.ItemID(c.items - 1)})
	if err != nil {
		return nil, fmt.Errorf("dump of %s: %w", id, err)
	}
	resp, ok := reply.Body.(*msg.DumpResp)
	if !ok {
		return nil, fmt.Errorf("unexpected reply %s", reply.Body.Kind())
	}
	return resp.Items, nil
}

func (c *controller) status() {
	for i := 0; i < c.sites; i++ {
		st, err := c.Status(core.SiteID(i), false)
		if err != nil {
			fmt.Printf("site %d: unreachable (%v)\n", i, err)
			continue
		}
		fmt.Printf("site %d: %-11s session %-3d fail-locks %v vector %s\n",
			i, st.State, st.Session, st.FailLockCounts, cli.FormatVector(st.Vector))
	}
}

func (c *controller) txn(args []string) {
	if len(args) < 2 {
		fatal(fmt.Errorf("usage: txn SITE OPS... (ops: r3, w5=hello)"))
	}
	coord, err := cli.ParseSite(args[0], c.sites)
	if err != nil {
		fatal(err)
	}
	ops, err := cli.ParseOps(args[1:])
	if err != nil {
		fatal(err)
	}
	id := core.TxnID(time.Now().UnixNano())
	reply, err := c.caller.Call(coord, &msg.ClientTxn{Txn: id, Ops: ops})
	if err != nil {
		fatal(err)
	}
	res := reply.Body.(*msg.TxnResult)
	fmt.Println(cli.FormatResult(res))
	if !res.Committed {
		os.Exit(1)
	}
}

func (c *controller) oneSite(args []string, fn func(core.SiteID)) {
	if len(args) != 1 {
		fatal(fmt.Errorf("expected one site id"))
	}
	id, err := cli.ParseSite(args[0], c.sites)
	if err != nil {
		fatal(err)
	}
	fn(id)
}

func (c *controller) fail(id core.SiteID) {
	if _, err := c.caller.Call(id, &msg.FailSim{}); err != nil {
		fatal(err)
	}
	fmt.Printf("%s is down\n", id)
}

func (c *controller) recover(id core.SiteID) {
	reply, err := c.caller.Call(id, &msg.RecoverSim{})
	if err != nil {
		fatal(err)
	}
	st := reply.Body.(*msg.StatusResp)
	if st.State != core.StatusUp {
		fatal(fmt.Errorf("recovery blocked: %s is %s", id, st.State))
	}
	fmt.Printf("%s is up (session %d)\n", id, st.Session)
}

func (c *controller) audit() {
	report, err := cluster.Audit(c)
	if err != nil {
		fatal(err)
	}
	fmt.Println(report)
	if !report.OK() {
		os.Exit(1)
	}
}

func (c *controller) shutdown() {
	for i := 0; i < c.sites; i++ {
		if _, err := c.caller.Call(core.SiteID(i), &msg.Shutdown{}); err != nil {
			fmt.Printf("site %d: %v\n", i, err)
			continue
		}
		fmt.Printf("site %d: shutting down\n", i)
	}
}
