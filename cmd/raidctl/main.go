// Command raidctl is the managing site for a TCP deployment of raidsrv
// processes: it injects transactions, orders failures and recoveries,
// queries status, and audits consistency.
//
//	raidctl -addrs "0=:7000,1=:7001,m=:7009" status
//	raidctl -config cluster.json txn 0 w3=hello r3
//	raidctl -config cluster.json fail 1
//	raidctl -config cluster.json recover 1
//	raidctl -config cluster.json audit
//	raidctl -config cluster.json shutdown
//
// The -config file is the same deploy.ClusterSpec raidsrv loads (and the
// process fabric writes), so the manager's view of the fleet — placement
// degree included — always matches the sites'. Transaction IDs are
// derived from the wall clock so separate raidctl invocations produce
// monotonically increasing versions.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"minraid/internal/cli"
	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/deploy"
	"minraid/internal/transport"
)

func main() {
	spec := deploy.BindFlags(flag.CommandLine)
	var (
		confPath = flag.String("config", "", "load the cluster spec from a JSON file (overrides the spec flags)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-call timeout")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	if *confPath != "" {
		loaded, err := deploy.LoadSpec(*confPath)
		if err != nil {
			fatal(err)
		}
		spec = loaded
	} else if err := spec.Validate(); err != nil {
		fatal(err)
	}
	addrMap, sites, err := spec.AddrMap()
	if err != nil {
		fatal(err)
	}
	if _, ok := addrMap[core.ManagingSite]; !ok {
		fatal(fmt.Errorf("address map needs an m= entry for the managing site"))
	}
	pol, err := spec.Policy()
	if err != nil {
		fatal(err)
	}

	net, err := transport.NewTCP(transport.TCPConfig{Self: core.ManagingSite, Addrs: addrMap})
	if err != nil {
		fatal(err)
	}
	defer net.Close()
	ep, err := net.Endpoint(core.ManagingSite)
	if err != nil {
		fatal(err)
	}
	caller := transport.NewCaller(ep, *timeout)
	// The managing site's control plane is the same cluster.Manager the
	// in-process experiments embed — raidctl only supplies the wire. The
	// spec-derived placement makes audits and status placement-aware; the
	// hardcoded full-replication assumption is gone.
	mgr, err := cluster.NewManager(caller, cluster.ManagerConfig{
		Sites:    sites,
		Items:    spec.Items,
		Policy:   pol,
		Timeout:  *timeout,
		Replicas: spec.Replicas(),
	})
	if err != nil {
		fatal(err)
	}
	go func() {
		for {
			env, ok := ep.Recv()
			if !ok {
				return
			}
			caller.Deliver(env)
		}
	}()

	ctl := &controller{mgr: mgr}
	switch args[0] {
	case "status":
		ctl.status()
	case "txn":
		ctl.txn(args[1:])
	case "fail":
		ctl.oneSite(args[1:], ctl.fail)
	case "recover":
		ctl.oneSite(args[1:], ctl.recover)
	case "audit":
		ctl.audit()
	case "shutdown":
		ctl.shutdown()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: raidctl {-addrs MAP | -config FILE} [flags] {status|txn SITE OPS...|fail SITE|recover SITE|audit|shutdown}")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "raidctl:", err)
	os.Exit(1)
}

// controller renders Manager operations for the terminal.
type controller struct {
	mgr *cluster.Manager
}

func (c *controller) status() {
	for i := 0; i < c.mgr.Sites(); i++ {
		st, err := c.mgr.Status(core.SiteID(i), false)
		if err != nil {
			fmt.Printf("site %d: unreachable (%v)\n", i, err)
			continue
		}
		fmt.Printf("site %d: %-11s session %-3d fail-locks %v vector %s\n",
			i, st.State, st.Session, st.FailLockCounts, cli.FormatVector(st.Vector))
	}
}

func (c *controller) txn(args []string) {
	if len(args) < 2 {
		fatal(fmt.Errorf("usage: txn SITE OPS... (ops: r3, w5=hello)"))
	}
	coord, err := cli.ParseSite(args[0], c.mgr.Sites())
	if err != nil {
		fatal(err)
	}
	ops, err := cli.ParseOps(args[1:])
	if err != nil {
		fatal(err)
	}
	// Wall-clock IDs keep versions monotone across raidctl invocations.
	res, err := c.mgr.ExecTxn(coord, core.TxnID(time.Now().UnixNano()), ops)
	if err != nil {
		fatal(err)
	}
	fmt.Println(cli.FormatResult(res))
	if !res.Committed {
		os.Exit(1)
	}
}

func (c *controller) oneSite(args []string, fn func(core.SiteID)) {
	if len(args) != 1 {
		fatal(fmt.Errorf("expected one site id"))
	}
	id, err := cli.ParseSite(args[0], c.mgr.Sites())
	if err != nil {
		fatal(err)
	}
	fn(id)
}

func (c *controller) fail(id core.SiteID) {
	if err := c.mgr.Fail(id); err != nil {
		fatal(err)
	}
	fmt.Printf("%s is down\n", id)
}

func (c *controller) recover(id core.SiteID) {
	st, err := c.mgr.Recover(id)
	if err != nil {
		if errors.Is(err, cluster.ErrRecoveryBlocked) && st != nil {
			fatal(fmt.Errorf("recovery blocked: %s is %s", id, st.State))
		}
		fatal(err)
	}
	fmt.Printf("%s is up (session %d)\n", id, st.Session)
}

func (c *controller) audit() {
	report, err := c.mgr.Audit()
	if err != nil {
		fatal(err)
	}
	fmt.Println(report)
	if !report.OK() {
		os.Exit(1)
	}
}

func (c *controller) shutdown() {
	for i := 0; i < c.mgr.Sites(); i++ {
		if err := c.mgr.Shutdown(core.SiteID(i)); err != nil {
			fmt.Printf("site %d: %v\n", i, err)
			continue
		}
		fmt.Printf("site %d: shutting down\n", i)
	}
}
