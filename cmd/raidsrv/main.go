// Command raidsrv runs one mini-RAID database site as its own OS process,
// talking real TCP to its peers — the deployment shape of the original
// RAID prototype before it was stripped down to one process per site on a
// single machine.
//
//	raidsrv -id 0 -addrs "0=:7000,1=:7001,m=:7009" -items 50
//	raidsrv -id 1 -addrs "0=:7000,1=:7001,m=:7009" -items 50
//
// Every process must receive the same -addrs map (numeric keys are site
// IDs, "m" is the managing site, which cmd/raidctl binds). The process
// exits when the managing site sends a Shutdown, or on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"minraid/internal/core"
	"minraid/internal/netcfg"
	"minraid/internal/policy"
	"minraid/internal/site"
	"minraid/internal/storage"
	"minraid/internal/transport"
)

func main() {
	var (
		id         = flag.Int("id", 0, "this site's id")
		addrs      = flag.String("addrs", "", "address map: 0=host:port,1=host:port,...,m=host:port")
		items      = flag.Int("items", 50, "database size in data items")
		pol        = flag.String("policy", "rowaa", "replication policy: rowaa, rowa, quorum")
		walDir     = flag.String("wal", "", "directory for a durable WAL store (empty: in-memory)")
		concurrent = flag.Int("concurrent", 0, "max interleaved txns per site (0/1 = serial, as the paper)")
	)
	flag.Parse()

	addrMap, sites, err := netcfg.ParseAddrs(*addrs)
	if err != nil {
		fatal(err)
	}
	if *id < 0 || *id >= sites {
		fatal(fmt.Errorf("site id %d out of range 0..%d", *id, sites-1))
	}
	p, ok := policy.ByName(*pol)
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *pol))
	}

	self := core.SiteID(*id)
	net, err := transport.NewTCP(transport.TCPConfig{Self: self, Addrs: addrMap})
	if err != nil {
		fatal(err)
	}
	defer net.Close()

	var store storage.Store
	if *walDir != "" {
		store, err = storage.OpenWAL(storage.WALOptions{Dir: *walDir, Items: *items})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
	}

	s, err := site.New(site.Config{
		ID:             self,
		Sites:          sites,
		Items:          *items,
		Policy:         p,
		Store:          store,
		ConcurrentTxns: *concurrent,
	}, net)
	if err != nil {
		fatal(err)
	}
	s.Start()
	fmt.Printf("raidsrv: %s listening on %s (%d sites, %d items, policy %s)\n",
		self, net.Addr(), sites, *items, p.Name())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		s.Wait() // returns after a Shutdown message stops the site
		close(done)
	}()
	select {
	case <-sig:
		fmt.Println("raidsrv: signal received, stopping")
		s.Stop()
	case <-done:
		fmt.Println("raidsrv: shutdown ordered by managing site")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "raidsrv:", err)
	os.Exit(1)
}
