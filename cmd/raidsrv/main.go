// Command raidsrv runs one mini-RAID database site as its own OS process,
// talking real TCP to its peers — the deployment shape of the original
// RAID prototype before it was stripped down to one process per site on a
// single machine.
//
//	raidsrv -id 0 -addrs "0=:7000,1=:7001,m=:7009" -items 50
//	raidsrv -id 1 -config cluster.json
//
// Every process must receive the same configuration: either the same flag
// values or, better, the same -config JSON file (one deploy.ClusterSpec —
// the artifact the process fabric writes and raidctl reads too). Numeric
// address-map keys are site IDs, "m" is the managing site.
//
// -down boots the site in the failed state after WAL replay: the shape of
// a crash restart. The process loads whatever the log holds, resumes its
// persisted session number, and waits deaf for the managing site's
// recovery order, which runs the ordinary type-1 rejoin.
//
// The process exits when the managing site sends a Shutdown, or on
// SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"minraid/internal/core"
	"minraid/internal/deploy"
	"minraid/internal/site"
	"minraid/internal/storage"
	"minraid/internal/transport"
)

func main() {
	spec := deploy.BindFlags(flag.CommandLine)
	var (
		id       = flag.Int("id", 0, "this site's id")
		confPath = flag.String("config", "", "load the cluster spec from a JSON file (overrides the spec flags)")
		down     = flag.Bool("down", false, "boot in the failed state (crash restart); rejoin via the managing site's recover order")
	)
	flag.Parse()

	if *confPath != "" {
		loaded, err := deploy.LoadSpec(*confPath)
		if err != nil {
			fatal(err)
		}
		spec = loaded
	} else if err := spec.Validate(); err != nil {
		fatal(err)
	}

	addrMap, sites, err := spec.AddrMap()
	if err != nil {
		fatal(err)
	}
	if *id < 0 || *id >= sites {
		fatal(fmt.Errorf("site id %d out of range 0..%d", *id, sites-1))
	}
	self := core.SiteID(*id)

	net, err := transport.NewTCP(transport.TCPConfig{Self: self, Addrs: addrMap})
	if err != nil {
		fatal(err)
	}
	defer net.Close()

	cfg, err := spec.SiteConfig(self)
	if err != nil {
		fatal(err)
	}
	if walDir := spec.WALDir(self); walDir != "" {
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			fatal(err)
		}
		store, err := storage.OpenWAL(storage.WALOptions{Dir: walDir, Items: spec.Items})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		cfg.Store = store
		// Crash-restart state: resume the persisted session so the rejoin
		// announcement is newer than any stale failure report about the
		// previous incarnation, and persist each bump before announcing.
		session, err := deploy.LoadSession(walDir)
		if err != nil {
			fatal(err)
		}
		cfg.Session = session
		cfg.PersistSession = func(n core.SessionNum) error {
			return deploy.SaveSession(walDir, n)
		}
	} else if *down {
		fatal(fmt.Errorf("-down requires a WAL store (-wal): a crash restart without durable state cannot rejoin"))
	}
	cfg.StartDown = *down

	s, err := site.New(cfg, net)
	if err != nil {
		fatal(err)
	}
	s.Start()
	state := "up"
	if *down {
		state = "down (awaiting recovery order)"
	}
	fmt.Printf("raidsrv: %s listening on %s (%d sites, %d items, policy %s, %s)\n",
		self, net.Addr(), sites, spec.Items, cfg.Policy.Name(), state)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		s.Wait() // returns after a Shutdown message stops the site
		close(done)
	}()
	select {
	case <-sig:
		fmt.Println("raidsrv: signal received, stopping")
		s.Stop()
	case <-done:
		fmt.Println("raidsrv: shutdown ordered by managing site")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "raidsrv:", err)
	os.Exit(1)
}
