// Command minraid is the interactive managing site: it builds an
// in-process mini-RAID cluster and exposes the control actions the paper's
// managing site provided — "to cause sites to fail and recover and to
// initiate a database transaction to a site" (§1.2) — as a small REPL.
//
//	minraid -sites 4 -items 50 -delay 9ms
//
//	> txn 1 r3 w5=hello r5        run a transaction on coordinator 1
//	> random 0                    run one generated transaction on site 0
//	> fail 0                      simulate failure of site 0
//	> recover 0                   begin recovery of site 0
//	> status                      session vectors, states, fail-locks
//	> faillocks                   fail-lock counts per site
//	> audit                       cross-site consistency audit
//	> stats                       per-site counters and timers
//	> help / quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"minraid"
	"minraid/internal/cli"
)

func main() {
	var (
		sites      = flag.Int("sites", 4, "number of database sites")
		items      = flag.Int("items", 50, "database size in data items")
		maxOps     = flag.Int("maxops", 10, "maximum operations per generated transaction")
		delay      = flag.Duration("delay", 0, "per-hop communication cost")
		pol        = flag.String("policy", "rowaa", "replication policy: rowaa, rowa, quorum")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "workload RNG seed")
		degree     = flag.Int("replicas", 0, "copies per item (0 = full replication)")
		concurrent = flag.Int("concurrent", 0, "max interleaved txns per site (0/1 = serial, as the paper)")
	)
	flag.Parse()

	var p minraid.Policy
	switch *pol {
	case "rowaa":
		p = minraid.ROWAA()
	case "rowa":
		p = minraid.ROWA()
	case "quorum":
		p = minraid.Quorum()
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *pol)
		os.Exit(2)
	}

	c, err := minraid.NewCluster(minraid.ClusterConfig{
		Sites: *sites, Items: *items, Policy: p, Delay: *delay,
		ReplicationDegree: *degree, ConcurrentTxns: *concurrent,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()
	gen := minraid.NewUniformWorkload(*items, *maxOps, *seed)

	fmt.Printf("mini-RAID managing site: %d sites, %d items, policy %s, delay %v\n",
		*sites, *items, p.Name(), *delay)
	fmt.Println(`type "help" for commands`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "quit", "exit":
			return
		case "help":
			printHelp()
		case "txn":
			cmdTxn(c, fields[1:])
		case "random":
			cmdRandom(c, gen, fields[1:])
		case "fail":
			withSite(fields[1:], func(id minraid.SiteID) {
				if err := c.Fail(id); err != nil {
					fmt.Println("error:", err)
					return
				}
				fmt.Printf("%s is down\n", id)
			})
		case "recover":
			withSite(fields[1:], func(id minraid.SiteID) {
				st, err := c.Recover(id)
				if err != nil {
					fmt.Println("error:", err)
					return
				}
				fmt.Printf("%s is %s (session %d)\n", id, st.State, st.Session)
			})
		case "status":
			cmdStatus(c, *sites)
		case "faillocks":
			cmdFailLocks(c, *sites)
		case "audit":
			report, err := c.Audit()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(report)
		case "stats":
			cmdStats(c, *sites)
		case "trace":
			cmdTrace(c, fields[1:])
		case "figure1", "figure2", "figure3":
			cmdFigure(fields[0], *delay)
		default:
			fmt.Printf("unknown command %q; try help\n", fields[0])
		}
	}
}

func printHelp() {
	fmt.Print(`commands:
  txn <site> <op>...   run a transaction; ops: rN (read item N), wN=value
  random <site>        run one randomly generated transaction
  fail <site>          simulate site failure
  recover <site>       begin site recovery (control transaction type 1)
  status               site states and session vectors
  faillocks            items fail-locked per site
  audit                cross-site consistency audit
  stats                per-site protocol counters
  trace <txn>          cross-site event timeline of one transaction
  figure1|2|3          reproduce a paper figure (on a fresh cluster)
  quit
`)
}

func withSite(args []string, fn func(minraid.SiteID)) {
	if len(args) != 1 {
		fmt.Println("usage: <command> <site>")
		return
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		fmt.Println("bad site id:", args[0])
		return
	}
	fn(minraid.SiteID(n))
}

func cmdTxn(c *minraid.Cluster, args []string) {
	if len(args) < 2 {
		fmt.Println("usage: txn <site> <op>...  (ops: r3, w5=hello)")
		return
	}
	coord, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Println("bad site id:", args[0])
		return
	}
	ops, err := cli.ParseOps(args[1:])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(c.Exec(minraid.SiteID(coord), ops))
}

func cmdRandom(c *minraid.Cluster, gen minraid.Generator, args []string) {
	if len(args) != 1 {
		fmt.Println("usage: random <site>")
		return
	}
	coord, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Println("bad site id:", args[0])
		return
	}
	id := c.NextTxnID()
	ops := gen.Next(id)
	fmt.Print("generated:")
	for _, op := range ops {
		fmt.Printf(" %s", op)
	}
	fmt.Println()
	printResult(c.ExecTxn(minraid.SiteID(coord), id, ops))
}

func printResult(res *minraid.TxnResult, err error) {
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(cli.FormatResult(res))
}

func cmdTrace(c *minraid.Cluster, args []string) {
	if len(args) != 1 {
		fmt.Println("usage: trace <txn>")
		return
	}
	n, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		fmt.Println("bad transaction id:", args[0])
		return
	}
	fmt.Print(c.Tracer().Span(minraid.TraceID(n)).Timeline())
}

func cmdStatus(c *minraid.Cluster, sites int) {
	for i := 0; i < sites; i++ {
		st, err := c.Status(minraid.SiteID(i), false)
		if err != nil {
			fmt.Printf("site %d: unreachable (%v)\n", i, err)
			continue
		}
		fmt.Printf("site %d: %-11s session %-3d vector %s\n",
			i, st.State, st.Session, cli.FormatVector(st.Vector))
	}
}

func cmdFailLocks(c *minraid.Cluster, sites int) {
	// Report from the first operational site's table.
	for i := 0; i < sites; i++ {
		st, err := c.Status(minraid.SiteID(i), false)
		if err != nil || st.State != minraid.StatusUp {
			continue
		}
		fmt.Printf("as observed by site %d:\n", i)
		for k, n := range st.FailLockCounts {
			fmt.Printf("  site %d: %d item(s) fail-locked\n", k, n)
		}
		return
	}
	fmt.Println("no operational site to report")
}

func cmdFigure(which string, delay time.Duration) {
	cfg := minraid.ExperimentConfig{Delay: delay}
	var (
		out fmt.Stringer
		err error
	)
	switch which {
	case "figure1":
		out, err = minraid.RunFigure1(cfg, 2000)
	case "figure2":
		out, err = minraid.RunFigure2(cfg)
	case "figure3":
		out, err = minraid.RunFigure3(cfg)
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(out)
}

func cmdStats(c *minraid.Cluster, sites int) {
	for i := 0; i < sites; i++ {
		st, err := c.Status(minraid.SiteID(i), false)
		if err != nil {
			continue
		}
		s := st.Stats
		fmt.Printf("site %d: committed=%d aborted=%d participated=%d copiers=%d served=%d flSet=%d flCleared=%d ctrl1=%d ctrl2=%d ctrl3=%d msgs=%d/%d\n",
			i, s.Committed, s.Aborted, s.Participated, s.CopiersRequested, s.CopiesServed,
			s.FailLocksSet, s.FailLocksCleared, s.ControlType1, s.ControlType2, s.ControlType3,
			s.MsgsIn, s.MsgsOut)
	}
}
