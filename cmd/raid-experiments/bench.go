package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"minraid/internal/experiment"
)

// runBench drives the soak throughput bench subcommand:
//
//	raid-experiments bench                       # 200 txns, serial vs concurrent(8)
//	raid-experiments bench -txns 400 -conc 16
//	raid-experiments bench -rate 500             # paced open-loop latency view
//	raid-experiments bench -o BENCH_soak.json
//	raid-experiments bench -baseline BENCH_baseline.json -min-ratio 0.3
//
// It runs the same seeded workload twice over durably-logged (fsync)
// stores — once serially, once interleaved with WAL group commit — writes
// the machine-readable BENCH_soak.json, and exits non-zero if either pass
// fails its consistency audit or, with -baseline, if serial throughput
// falls below min-ratio of the committed baseline's.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		txns     = fs.Int("txns", 200, "transactions per pass")
		sites    = fs.Int("sites", 4, "database sites")
		items    = fs.Int("items", 64, "database items")
		conc     = fs.Int("conc", 8, "concurrent pass: per-site transaction degree and in-flight bound")
		degree   = fs.Int("degree", 0, "copies per item, placed round-robin (0 or >= -sites: full replication; partial replication forces both passes serial)")
		rate     = fs.Float64("rate", 0, "open-loop arrival rate in txn/s for the concurrent pass (0: unpaced peak-throughput comparison)")
		delay    = fs.Duration("delay", 500*time.Microsecond, "per-hop communication cost")
		seed     = fs.Int64("seed", 1987, "workload RNG seed")
		out      = fs.String("o", "BENCH_soak.json", "output path for the JSON report (empty: stdout summary only)")
		baseline = fs.String("baseline", "", "committed BENCH_soak.json to regression-check serial throughput against")
		minRatio = fs.Float64("min-ratio", 0.3, "fail if serial ops/sec < min-ratio x baseline's (generous: CI runners vary)")
	)
	fs.Parse(args)

	header(fmt.Sprintf("Soak throughput bench: serial vs concurrent(%d)+group-commit, %d txns", *conc, *txns))
	rep, err := experiment.RunSoakBench(experiment.SoakBenchConfig{
		Base: experiment.Config{
			Sites: *sites, Items: *items,
			Delay: *delay, Seed: *seed,
			ReplicationDegree: *degree,
		},
		Txns:        *txns,
		Concurrency: *conc,
		Rate:        *rate,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println()
	fmt.Print(rep)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *baseline != "" {
		if err := checkBaseline(rep, *baseline, *minRatio); err != nil {
			fmt.Fprintln(os.Stderr, "raid-experiments: bench:", err)
			os.Exit(1)
		}
	}
}

// checkBaseline compares serial throughput against a committed report. The
// serial pass is the regression anchor: it has no concurrency to hide a
// slowdown behind, so a protocol- or storage-layer regression shows up in
// it directly, while minRatio absorbs runner-to-runner hardware variance.
func checkBaseline(rep *experiment.BenchReport, path string, minRatio float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base experiment.BenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Serial == nil || base.Serial.OpsPerSec <= 0 {
		return fmt.Errorf("baseline %s has no serial ops/sec", path)
	}
	floor := base.Serial.OpsPerSec * minRatio
	if rep.Serial.OpsPerSec < floor {
		return fmt.Errorf("serial throughput regression: %.1f txn/s < %.1f (%.0f%% of baseline %.1f)",
			rep.Serial.OpsPerSec, floor, minRatio*100, base.Serial.OpsPerSec)
	}
	fmt.Printf("baseline check: serial %.1f txn/s >= %.1f (%.0f%% of committed %.1f) ok\n",
		rep.Serial.OpsPerSec, floor, minRatio*100, base.Serial.OpsPerSec)
	return nil
}
