package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"minraid/internal/experiment"
)

// runBench drives the soak throughput bench subcommand:
//
//	raid-experiments bench                       # 200 txns, serial vs concurrent(8)
//	raid-experiments bench -txns 400 -conc 16
//	raid-experiments bench -rate 500             # paced open-loop latency view
//	raid-experiments bench -o BENCH_soak.json
//	raid-experiments bench -baseline BENCH_baseline.json -min-ratio 0.3
//	raid-experiments bench -wan wan3             # geo: rowaa vs epoch commit
//	raid-experiments bench -wan wan3 -commit epoch
//
// It runs the same seeded workload twice over durably-logged (fsync)
// stores — once serially, once interleaved with WAL group commit — writes
// the machine-readable BENCH_soak.json, and exits non-zero if either pass
// fails its consistency audit or, with -baseline, if serial throughput
// falls below min-ratio of the committed baseline's.
//
// With -wan the comparison changes axis: both passes run interleaved at
// the same degree over the compiled WAN link matrix, once with
// per-transaction ROWAA commit and once with epoch-batched commit, and
// the report goes to BENCH_wan.json. -commit rowaa or epoch runs a
// single pass and merges it into an existing report at the output path,
// so the two modes can be run as separate invocations of the identical
// seeded workload.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		txns       = fs.Int("txns", 200, "transactions per pass")
		sites      = fs.Int("sites", 4, "database sites (with -wan: 0 defaults to 6)")
		items      = fs.Int("items", 64, "database items")
		conc       = fs.Int("conc", 8, "concurrent pass: per-site transaction degree and in-flight bound")
		degree     = fs.Int("degree", 0, "copies per item, placed round-robin (0 or >= -sites: full replication; partial replication forces both passes serial)")
		rate       = fs.Float64("rate", 0, "open-loop arrival rate in txn/s for the concurrent pass (0: unpaced peak-throughput comparison)")
		delay      = fs.Duration("delay", 500*time.Microsecond, "per-hop communication cost")
		seed       = fs.Int64("seed", 1987, "workload RNG seed")
		wan        = fs.String("wan", "", "WAN profile: bench rowaa vs epoch-batched commit over the compiled link matrix instead of serial vs concurrent (try wan2, wan3, wan5)")
		commitMode = fs.String("commit", "both", "with -wan: both (one invocation, two passes), or rowaa / epoch (single pass, merged into the report at -o)")
		commitLen  = fs.Duration("commit-epoch", 2*time.Millisecond, "with -wan: epoch length of the batched-commit pass")
		out        = fs.String("o", "", "output path for the JSON report (default BENCH_soak.json, or BENCH_wan.json with -wan; empty after explicit -o=: stdout summary only)")
		baseline   = fs.String("baseline", "", "committed report to regression-check throughput against (serial pass, or the rowaa pass with -wan)")
		minRatio   = fs.Float64("min-ratio", 0.3, "fail if the anchor pass ops/sec < min-ratio x baseline's (generous: CI runners vary)")
	)
	fs.Parse(args)
	outSet, sitesSet, itemsSet := false, false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "o":
			outSet = true
		case "sites":
			sitesSet = true
		case "items":
			itemsSet = true
		}
	})
	if !outSet {
		if *wan != "" {
			*out = "BENCH_wan.json"
		} else {
			*out = "BENCH_soak.json"
		}
	}

	if *wan != "" {
		if !sitesSet {
			*sites = 0 // let the WAN bench default apply (6: two per wan3 region)
		}
		if !itemsSet {
			*items = 0 // WAN bench default (256: measure the commit protocol, not deadlocks)
		}
		runWANBenchCmd(*wan, *commitMode, *commitLen, *txns, *sites, *items, *conc, *rate, *seed, *out, *baseline, *minRatio)
		return
	}

	header(fmt.Sprintf("Soak throughput bench: serial vs concurrent(%d)+group-commit, %d txns", *conc, *txns))
	rep, err := experiment.RunSoakBench(experiment.SoakBenchConfig{
		Base: experiment.Config{
			Sites: *sites, Items: *items,
			Delay: *delay, Seed: *seed,
			ReplicationDegree: *degree,
		},
		Txns:        *txns,
		Concurrency: *conc,
		Rate:        *rate,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println()
	fmt.Print(rep)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *baseline != "" {
		if err := checkBaseline(rep, *baseline, *minRatio); err != nil {
			fmt.Fprintln(os.Stderr, "raid-experiments: bench:", err)
			os.Exit(1)
		}
	}
}

// runWANBenchCmd drives the -wan variant: rowaa vs epoch-batched commit
// over the same compiled WAN link matrix and the same seeded workload.
// mode both runs the two passes in one invocation; rowaa or epoch runs
// one pass and merges it into whatever report already sits at out.
func runWANBenchCmd(profile, mode string, commitLen time.Duration, txns, sites, items, conc int, rate float64, seed int64, out, baseline string, minRatio float64) {
	cfg := experiment.WANBenchConfig{
		Base: experiment.Config{
			Sites: sites, Items: items, Seed: seed,
		},
		Profile:     profile,
		Txns:        txns,
		Concurrency: conc,
		Rate:        rate,
		CommitEpoch: commitLen,
	}
	var rep *experiment.WANBenchReport
	var err error
	switch mode {
	case "both", "":
		header(fmt.Sprintf("WAN commit bench: rowaa vs epoch(%v) on %s, %d txns, degree %d", commitLen, profile, txns, conc))
		rep, err = experiment.RunWANBench(cfg)
	case "rowaa", "epoch":
		header(fmt.Sprintf("WAN commit bench: %s pass on %s, %d txns, degree %d", mode, profile, txns, conc))
		rep, err = experiment.RunWANBenchOne(cfg, mode)
	default:
		fail(fmt.Errorf("unknown commit mode %q (want both, rowaa or epoch)", mode))
	}
	if err != nil {
		fail(err)
	}
	if out != "" {
		mergeWANReport(rep, out)
	}
	fmt.Println()
	fmt.Print(rep)

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", out)
	}

	if baseline != "" {
		if err := checkWANBaseline(rep, baseline, minRatio); err != nil {
			fmt.Fprintln(os.Stderr, "raid-experiments: bench:", err)
			os.Exit(1)
		}
	}
}

// mergeWANReport folds the other commit mode's pass from an existing
// report at path into rep, provided it came from the identical workload
// (same WAN fingerprint, seed, transaction count, degree and pacing) —
// this is what lets `-commit rowaa` and `-commit epoch` invocations
// accumulate into one BENCH_wan.json.
func mergeWANReport(rep *experiment.WANBenchReport, path string) {
	if rep.ROWAA != nil && rep.Epoch != nil {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return // nothing to merge
	}
	var old experiment.WANBenchReport
	if err := json.Unmarshal(data, &old); err != nil || old.Schema != rep.Schema {
		return
	}
	if old.WANFingerprint != rep.WANFingerprint || old.Seed != rep.Seed ||
		old.Concurrency != rep.Concurrency || old.RateTxnPerSec != rep.RateTxnPerSec {
		fmt.Printf("note: %s is from a different configuration; not merging its passes\n", path)
		return
	}
	if rep.ROWAA == nil && old.ROWAA != nil && (rep.Epoch == nil || rep.Epoch.Txns == old.ROWAA.Txns) {
		rep.ROWAA = old.ROWAA
		fmt.Printf("merged rowaa pass from %s\n", path)
	}
	if rep.Epoch == nil && old.Epoch != nil && old.CommitEpochMs == rep.CommitEpochMs &&
		(rep.ROWAA == nil || rep.ROWAA.Txns == old.Epoch.Txns) {
		rep.Epoch = old.Epoch
		fmt.Printf("merged epoch pass from %s\n", path)
	}
	if rep.ROWAA != nil && rep.Epoch != nil && rep.ROWAA.OpsPerSec > 0 {
		rep.SpeedupX = rep.Epoch.OpsPerSec / rep.ROWAA.OpsPerSec
	}
}

// checkWANBaseline compares the rowaa pass against a committed
// BENCH_wan.json. The per-transaction pass is the regression anchor for
// the same reason the serial pass anchors the soak bench: no batching to
// hide a protocol slowdown behind.
func checkWANBaseline(rep *experiment.WANBenchReport, path string, minRatio float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base experiment.WANBenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.ROWAA == nil || base.ROWAA.OpsPerSec <= 0 {
		return fmt.Errorf("baseline %s has no rowaa ops/sec", path)
	}
	if rep.ROWAA == nil {
		return fmt.Errorf("no rowaa pass in this run to compare against the baseline")
	}
	floor := base.ROWAA.OpsPerSec * minRatio
	if rep.ROWAA.OpsPerSec < floor {
		return fmt.Errorf("wan rowaa throughput regression: %.1f txn/s < %.1f (%.0f%% of baseline %.1f)",
			rep.ROWAA.OpsPerSec, floor, minRatio*100, base.ROWAA.OpsPerSec)
	}
	fmt.Printf("baseline check: wan rowaa %.1f txn/s >= %.1f (%.0f%% of committed %.1f) ok\n",
		rep.ROWAA.OpsPerSec, floor, minRatio*100, base.ROWAA.OpsPerSec)
	return nil
}

// checkBaseline compares serial throughput against a committed report. The
// serial pass is the regression anchor: it has no concurrency to hide a
// slowdown behind, so a protocol- or storage-layer regression shows up in
// it directly, while minRatio absorbs runner-to-runner hardware variance.
func checkBaseline(rep *experiment.BenchReport, path string, minRatio float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base experiment.BenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Serial == nil || base.Serial.OpsPerSec <= 0 {
		return fmt.Errorf("baseline %s has no serial ops/sec", path)
	}
	floor := base.Serial.OpsPerSec * minRatio
	if rep.Serial.OpsPerSec < floor {
		return fmt.Errorf("serial throughput regression: %.1f txn/s < %.1f (%.0f%% of baseline %.1f)",
			rep.Serial.OpsPerSec, floor, minRatio*100, base.Serial.OpsPerSec)
	}
	fmt.Printf("baseline check: serial %.1f txn/s >= %.1f (%.0f%% of committed %.1f) ok\n",
		rep.Serial.OpsPerSec, floor, minRatio*100, base.Serial.OpsPerSec)
	return nil
}
