// Command raid-experiments regenerates every table and figure of the
// paper's evaluation:
//
//	raid-experiments                  # run everything, zero injected latency
//	raid-experiments -delay 9ms      # reproduce the paper's absolute scale
//	raid-experiments -run f1         # just Figure 1
//	raid-experiments -csv out/       # also write figure series as CSV
//	raid-experiments soak            # seeded chaos soak (see -h for knobs)
//
// Experiments: e1 (overhead tables §2.2), f1 (Figure 1 §3), f2/f3
// (Figures 2-3 §4), ext (the paper's proposed extensions: two-step
// recovery, type-3, read-fraction sweep, policy comparison). The soak
// subcommand runs randomized fail/recover schedules under a seeded chaotic
// network and audits copy consistency after every epoch.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"minraid/internal/core"
	"minraid/internal/experiment"
	"minraid/internal/plot"
)

func main() {
	// Subcommand dispatch happens before flag parsing so each subcommand
	// owns its own flag set.
	if len(os.Args) > 1 && os.Args[1] == "soak" {
		runSoak(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		runBench(os.Args[2:])
		return
	}
	var (
		run   = flag.String("run", "all", "which experiment: all, e1, f1, f2, f3, ext")
		delay = flag.Duration("delay", 0, "per-hop communication cost (9ms reproduces the paper's hardware)")
		seed  = flag.Int64("seed", 1987, "workload RNG seed")
		csv   = flag.String("csv", "", "directory to write figure CSVs into")
		pct   = flag.Bool("percentiles", false, "also print p50/p95/p99 latency tables per event class")
	)
	flag.Parse()

	cfg := experiment.Config{Seed: *seed, Delay: *delay}
	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	if want("e1") {
		ran = true
		runE1(cfg, *pct)
	}
	if want("f1") {
		ran = true
		runF1(cfg, *csv, *pct)
	}
	if want("f2") {
		ran = true
		runScenario(cfg, *csv, "f2", *pct)
	}
	if want("f3") {
		ran = true
		runScenario(cfg, *csv, "f3", *pct)
	}
	if want("ext") {
		ran = true
		runExtensions(cfg, *pct)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want all, e1, f1, f2, f3, ext)\n", *run)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "raid-experiments:", err)
	os.Exit(1)
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

// percentiles prints the tail-latency table when -percentiles is set.
func percentiles(show bool, pr *experiment.PercentileReport) {
	if !show || pr == nil {
		return
	}
	fmt.Println()
	fmt.Print(pr)
}

func runE1(cfg experiment.Config, pct bool) {
	header("Experiment 1: overhead measurements (§2.2)")
	fmt.Printf("parameters: 50 items, 4 sites, max txn size 10, delay %v\n\n", cfg.Delay)

	fl, err := experiment.RunOverheadFailLocks(cfg, 50, 200)
	if err != nil {
		fail(err)
	}
	fmt.Println(fl)
	fmt.Println("paper: coordinator 176 -> 186 ms (+5.7%), participant 90 -> 97 ms (+7.8%)")
	percentiles(pct, fl.Percentiles)
	fmt.Println()

	ctrl, err := experiment.RunOverheadControl(cfg, 10)
	if err != nil {
		fail(err)
	}
	fmt.Println(ctrl)
	fmt.Println("paper: type 1 recovering 190 ms, type 1 operational 50 ms, type 2 68 ms")
	percentiles(pct, ctrl.Percentiles)
	fmt.Println()

	cop, err := experiment.RunOverheadCopier(cfg, 10)
	if err != nil {
		fail(err)
	}
	fmt.Println(cop)
	fmt.Println("paper: 270 ms vs 186 ms (+45%); copy-serve 25 ms; clear 20 ms; ~30% of overhead from clearing")
	percentiles(pct, cop.Percentiles)
}

func runF1(cfg experiment.Config, csvDir string, pct bool) {
	header("Experiment 2: data availability on a recovering site (§3, Figure 1)")
	rep, err := experiment.RunFigure1(cfg, 2000)
	if err != nil {
		fail(err)
	}
	fmt.Println(rep)
	fmt.Println("paper: >90% fail-locked after 100 txns; 160 txns to full recovery;")
	fmt.Println("       first 10 locks cleared in 6 txns, last 10 in 106; 2 copiers requested")
	percentiles(pct, rep.Res.Percentiles)
	writeCSV(csvDir, "figure1.csv", []plot.Series{
		{Name: "fail-locks site 0", Y: rep.Res.FailLocks[0]},
	})
}

func runScenario(cfg experiment.Config, csvDir, which string, pct bool) {
	var (
		rep *experiment.ScenarioReport
		err error
	)
	if which == "f2" {
		header("Experiment 3 scenario 1: alternating failures (§4.2.1, Figure 2)")
		rep, err = experiment.RunFigure2(cfg)
	} else {
		header("Experiment 3 scenario 2: rolling failures (§4.2.2, Figure 3)")
		rep, err = experiment.RunFigure3(cfg)
	}
	if err != nil {
		fail(err)
	}
	fmt.Println(rep)
	if which == "f2" {
		fmt.Println("paper: 13 transactions aborted for data unavailability")
	} else {
		fmt.Println("paper: no aborted transactions due to data being unavailable")
	}
	percentiles(pct, rep.Res.Percentiles)
	var series []plot.Series
	for i := 0; i < rep.Cfg.Sites; i++ {
		series = append(series, plot.Series{
			Name: fmt.Sprintf("site %d", i),
			Y:    rep.Res.FailLocks[core.SiteID(i)],
		})
	}
	writeCSV(csvDir, which+".csv", series)
}

func runExtensions(cfg experiment.Config, pct bool) {
	header("Extensions proposed by the paper (§3.2, §5)")

	two, err := experiment.RunTwoStepRecovery(cfg, 0.5, 2000)
	if err != nil {
		fail(err)
	}
	fmt.Println(two)
	percentiles(pct, two.Percentiles)

	rf, err := experiment.RunReadFractionSweep(cfg, nil, 6000)
	if err != nil {
		fail(err)
	}
	fmt.Println(rf)

	t3, err := experiment.RunType3Study(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Println(t3)

	pc, err := experiment.RunPolicyComparison(cfg, 100)
	if err != nil {
		fail(err)
	}
	fmt.Println(pc)

	part, err := experiment.RunPartitionStudy(cfg, 10)
	if err != nil {
		fail(err)
	}
	fmt.Println(part)

	mc, err := experiment.RunMessageComplexity(cfg, nil, 100)
	if err != nil {
		fail(err)
	}
	fmt.Println(mc)

	rd, err := experiment.RunReplicationDegree(cfg, 150)
	if err != nil {
		fail(err)
	}
	fmt.Println(rd)

	// The concurrency sweep needs non-zero message costs to be
	// meaningful; inject a small delay when the run is otherwise free.
	ccfg := cfg
	if ccfg.Delay == 0 {
		ccfg.Delay = 500 * time.Microsecond
	}
	cs, err := experiment.RunConcurrencySweep(ccfg, nil, 4, 50)
	if err != nil {
		fail(err)
	}
	fmt.Println(cs)
}

func writeCSV(dir, name string, series []plot.Series) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := plot.CSV(f, "txn", series); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)
}
