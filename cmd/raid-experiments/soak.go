package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"

	"minraid/internal/experiment"
	"minraid/internal/policy"
	"minraid/internal/transport"
)

// runSoak drives the chaos soak subcommand:
//
//	raid-experiments soak                      # 5 seeds, default chaos
//	raid-experiments soak -seeds 1,2,3 -txns 60 -drop 0.03
//	raid-experiments soak -partitions          # + scheduled link cuts
//	raid-experiments soak -transport tcp       # loopback TCP fabric
//	raid-experiments soak -persist ./walstate  # carry WAL stores across epochs
//
// Each (seed, epoch) builds a fresh cluster on a seeded chaotic network,
// runs a generated fail/recover schedule with workload traffic, and audits
// copy consistency. With -partitions a deterministic link-fault schedule
// (symmetric partitions, one-way drops, partial cuts, heals) runs on top,
// and split brain is reconciled at every heal. Exit status is non-zero on
// any audit violation, and — unless -repro=false — the first epoch is
// re-run afterwards to prove determinism: same seed, identical partition
// event stream and per-link drop/dup/jitter/cut decisions.
func runSoak(args []string) {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	var (
		seeds      = fs.String("seeds", "1,2,3,4,5", "comma-separated root seeds")
		epochs     = fs.Int("epochs", 1, "epochs per seed")
		txns       = fs.Int("txns", 40, "transactions per epoch")
		sites      = fs.Int("sites", 4, "database sites")
		items      = fs.Int("items", 30, "database items")
		degree     = fs.Int("degree", 0, "copies per item, placed round-robin (0 or >= -sites: full replication; partial replication runs serially and needs -policy rowaa or quorum)")
		drop       = fs.Float64("drop", 0.02, "per-message drop probability on site-to-site links")
		dup        = fs.Float64("dup", 0.02, "per-message duplication probability")
		jitter     = fs.Duration("jitter", 5*time.Millisecond, "max injected per-message latency (keep well below -ack)")
		delay      = fs.Duration("delay", 0, "per-hop communication cost")
		ack        = fs.Duration("ack", 50*time.Millisecond, "failure-detection ack timeout")
		partitions = fs.Bool("partitions", false, "schedule deterministic link faults (partitions, one-way drops, cuts) and reconcile split brain at heals; with -wan the faults are region-sized")
		wan        = fs.String("wan", "", "WAN profile for geo-replication: sites assigned round-robin to regions, per-directed-link base delay/jitter/wire cost compiled from the region matrix (empty: flat chaos; try wan2, wan3, wan5)")
		commitMode = fs.String("commit", "rowaa", "commit mode: rowaa (per-transaction phase two) or epoch (batched fan-out once per commit epoch; requires -policy rowaa)")
		commitLen  = fs.Duration("commit-epoch", 2*time.Millisecond, "epoch length for -commit epoch (must stay under -ack)")
		scrubOn    = fs.Bool("scrub", false, "continuous heal: REDO-only instant recovery plus a background scrubber repairing fail-locks alongside the workload (replaces the drain epilogue)")
		scrubRate  = fs.Float64("scrub-rate", 0, "scrubber budget in items/sec (0: unthrottled)")
		scrubBatch = fs.Int("scrub-batch", 0, "items per scrub copier transaction (0: scrub default)")
		conc       = fs.Int("concurrency", 0, "per-site concurrent transaction degree (0: 4 where the policy supports it, else 1; 1: the paper's serial processing)")
		rate       = fs.Float64("rate", 0, "open-loop arrival rate in txns/sec for the concurrent driver (0: issue as fast as the in-flight bound allows)")
		lockwait   = fs.Duration("lockwait", 0, "per-site lock-wait budget; must stay below -ack so a lock wait never looks like a site failure (0: ack/2)")
		policyName = fs.String("policy", "rowaa", "replication policy: rowaa, rowa or quorum")
		trans      = fs.String("transport", "memory", "wire: memory or tcp (tcp also re-runs in memory and compares abort profiles)")
		persist    = fs.String("persist", "", "directory for write-ahead-logged stores carried across a seed's epochs (empty: in-memory stores)")
		repro      = fs.Bool("repro", true, "re-run the first epoch and verify identical partition events and chaos decisions")
		pct        = fs.Bool("percentiles", false, "also print p50/p95/p99 latency tables per event class")
		quiet      = fs.Bool("q", false, "suppress per-epoch progress lines")
		fabric     = fs.String("fabric", "local", "deployment shape: local (in-process cluster, simulated failures) or proc (raidsrv OS processes, SIGKILL failures, restart-with-WAL-replay recovery)")
		raidsrv    = fs.String("raidsrv", "", "prebuilt raidsrv binary for -fabric proc (empty: go build from source)")
		workdir    = fs.String("workdir", "", "work dir for -fabric proc: spec file, per-site logs, WAL trees (empty: a temp dir, removed on exit)")
	)
	fs.Parse(args)

	pol, known := policy.ByName(*policyName)
	if !known {
		fail(fmt.Errorf("unknown policy %q (want rowaa, rowa or quorum)", *policyName))
	}
	var commitEpoch time.Duration
	switch *commitMode {
	case "rowaa", "":
	case "epoch":
		commitEpoch = *commitLen
	default:
		fail(fmt.Errorf("unknown commit mode %q (want rowaa or epoch)", *commitMode))
	}
	if *fabric == "proc" {
		// Chaos probabilities and the transport selector are in-process
		// knobs; clear their defaults so only an explicit request reaches
		// the proc validator (which explains why it cannot honor them).
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["drop"] {
			*drop = 0
		}
		if !set["dup"] {
			*dup = 0
		}
		if !set["jitter"] {
			*jitter = 0
		}
		if !set["transport"] {
			*trans = ""
		}
		if !set["ack"] {
			// Failure detection across real OS processes: scheduling hiccups
			// alone can exceed the in-process 50ms default.
			*ack = 250 * time.Millisecond
		}
	}
	cfg := experiment.SoakConfig{
		Base: experiment.Config{
			Sites:             *sites,
			Items:             *items,
			Delay:             *delay,
			AckTimeout:        *ack,
			Policy:            pol,
			ReplicationDegree: *degree,
		},
		Seeds:         parseSeeds(*seeds),
		EpochsPerSeed: *epochs,
		TxnsPerEpoch:  *txns,
		Chaos: transport.ChaosConfig{
			Drop:      *drop,
			Dup:       *dup,
			MaxJitter: *jitter,
		},
		Partitions:     *partitions,
		WANProfile:     *wan,
		CommitEpoch:    commitEpoch,
		Scrub:          *scrubOn,
		ScrubRate:      *scrubRate,
		ScrubBatch:     *scrubBatch,
		Transport:      *trans,
		WALDir:         *persist,
		Concurrency:    *conc,
		ArrivalRate:    *rate,
		LockWaitBudget: *lockwait,
		Fabric:         *fabric,
		RaidsrvBin:     *raidsrv,
		WorkDir:        *workdir,
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	}

	mode := ""
	if *partitions {
		mode = ", partitions on"
	}
	if *wan != "" {
		mode += fmt.Sprintf(", wan %s", *wan)
	}
	if commitEpoch > 0 {
		mode += fmt.Sprintf(", epoch commit %v", commitEpoch)
	}
	if *scrubOn {
		mode += ", scrub on"
	}
	if *degree > 0 && *degree < *sites {
		mode += fmt.Sprintf(", degree %d of %d", *degree, *sites)
	}
	if *fabric == "proc" {
		mode += ", fabric proc (SIGKILL failures, WAL-replay recovery)"
	}
	header(fmt.Sprintf("Chaos soak: %d seed(s) x %d epoch(s) x %d txns (policy=%s transport=%s drop=%v dup=%v jitter=%v%s)",
		len(cfg.Seeds), cfg.EpochsPerSeed, cfg.TxnsPerEpoch, *policyName, *trans, *drop, *dup, *jitter, mode))
	res, err := experiment.RunSoak(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Println()
	fmt.Print(res)
	if *wan != "" {
		for _, e := range res.Epochs {
			fmt.Printf("seed %d epoch %d wan: %s (link matrix fingerprint %016x)\n",
				e.Seed, e.Epoch, e.WANRegions, e.WANFingerprint)
		}
	}
	if *partitions {
		for _, e := range res.Epochs {
			fmt.Printf("seed %d epoch %d partition schedule (fingerprint %016x): %s\n",
				e.Seed, e.Epoch, e.NetFingerprint, strings.Join(e.NetEvents, "; "))
		}
	}
	if *scrubOn {
		for _, e := range res.Epochs {
			fmt.Printf("seed %d epoch %d heal: %v via %d scrub passes (%d items refreshed, %d copier txns), %d fail-locks left\n",
				e.Seed, e.Epoch, e.HealTime.Round(time.Millisecond),
				e.ScrubPasses, e.ScrubItems, e.ScrubCopiers, e.LocksAfterDrain)
		}
	}
	if *fabric == "proc" {
		for _, e := range res.Epochs {
			fmt.Printf("seed %d epoch %d crash cycles: %d SIGKILLs, %d exec+WAL-replay restarts, %d drain copiers\n",
				e.Seed, e.Epoch, e.Kills, e.Restarts, e.DrainCopiers)
		}
	}
	for _, e := range res.Epochs {
		if !e.AuditOK {
			fmt.Printf("\nseed %d epoch %d audit detail:\n%s\n", e.Seed, e.Epoch, e.AuditDetail)
		}
	}
	percentiles(*pct, res.Percentiles)

	ok := res.OK()
	if *trans == "tcp" {
		if err := compareTransports(cfg, res); err != nil {
			fmt.Fprintln(os.Stderr, "raid-experiments: soak:", err)
			ok = false
		}
	}
	if *repro && len(res.Epochs) > 0 {
		reproErr := verifyRepro(cfg, res.Epochs[0])
		if reproErr != nil {
			fmt.Fprintln(os.Stderr, "raid-experiments: soak:", reproErr)
			ok = false
		} else if res.Epochs[0].Concurrency > 1 || cfg.Scrub {
			why := fmt.Sprintf("concurrency %d: per-link chaos counters may race and are not compared", res.Epochs[0].Concurrency)
			if cfg.Scrub {
				why = "scrub traffic is timing-dependent, so per-link chaos counters are not compared"
			}
			fmt.Printf("\nrepro check: seed %d epoch %d re-run reproduced identical failure events (%d), partition events (%d) and workload fingerprint %016x (%s)\n",
				res.Epochs[0].Seed, res.Epochs[0].Epoch, len(res.Epochs[0].FailEvents), len(res.Epochs[0].NetEvents),
				res.Epochs[0].WorkloadFingerprint, why)
		} else {
			fmt.Printf("\nrepro check: seed %d epoch %d re-run reproduced identical failure events (%d), partition events (%d), workload fingerprint %016x and chaos decisions on %d links\n",
				res.Epochs[0].Seed, res.Epochs[0].Epoch, len(res.Epochs[0].FailEvents), len(res.Epochs[0].NetEvents),
				res.Epochs[0].WorkloadFingerprint, len(res.Epochs[0].Chaos))
		}
		if reproErr == nil && cfg.WANProfile != "" {
			fmt.Printf("repro check: wan %s recompiled to the identical link matrix (fingerprint %016x)\n",
				cfg.WANProfile, res.Epochs[0].WANFingerprint)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// verifyRepro re-runs one epoch and compares the injected-fault streams
// (fail/recover schedule, partition events) and the issued-workload
// fingerprint against the first run's; in serial mode it also compares the
// chaos layer's per-link decision counters. In concurrent mode those
// counters are excluded: goroutine interleavings reorder retries and
// timer-driven sends, so per-link consumption of the chaos decision stream
// legitimately differs between bit-identical workloads. Scrub mode is
// excluded for the same reason — the background scrubber's batches land
// at wall-clock times, not schedule points. With persistence
// the re-run gets a fresh state directory so it starts from the same empty
// stores the first epoch saw.
func verifyRepro(cfg experiment.SoakConfig, first experiment.EpochResult) error {
	cfg.Seeds = []int64{first.Seed}
	cfg.EpochsPerSeed = 1
	cfg.Logf = nil
	// A proc re-run must boot a fresh fleet on empty stores, not the first
	// run's WAL trees.
	cfg.WorkDir = ""
	if cfg.WALDir != "" {
		dir, err := os.MkdirTemp("", "raid-soak-repro-")
		if err != nil {
			return fmt.Errorf("repro re-run: %w", err)
		}
		defer os.RemoveAll(dir)
		cfg.WALDir = dir
	}
	rerun, err := experiment.RunSoak(cfg)
	if err != nil {
		return fmt.Errorf("repro re-run: %w", err)
	}
	re := rerun.Epochs[0]
	if !reflect.DeepEqual(re.FailEvents, first.FailEvents) {
		return fmt.Errorf("repro check failed: seed %d epoch %d produced a different failure schedule:\nfirst: %v\nrerun: %v",
			first.Seed, first.Epoch, first.FailEvents, re.FailEvents)
	}
	if !reflect.DeepEqual(re.NetEvents, first.NetEvents) || re.NetFingerprint != first.NetFingerprint {
		return fmt.Errorf("repro check failed: seed %d epoch %d produced a different partition schedule:\nfirst: %016x %v\nrerun: %016x %v",
			first.Seed, first.Epoch, first.NetFingerprint, first.NetEvents, re.NetFingerprint, re.NetEvents)
	}
	if re.WorkloadFingerprint != first.WorkloadFingerprint {
		return fmt.Errorf("repro check failed: seed %d epoch %d issued a different workload stream:\nfirst: %016x\nrerun: %016x",
			first.Seed, first.Epoch, first.WorkloadFingerprint, re.WorkloadFingerprint)
	}
	if re.WANFingerprint != first.WANFingerprint || re.WANRegions != first.WANRegions {
		return fmt.Errorf("repro check failed: seed %d epoch %d compiled a different WAN link matrix:\nfirst: %016x %s\nrerun: %016x %s",
			first.Seed, first.Epoch, first.WANFingerprint, first.WANRegions, re.WANFingerprint, re.WANRegions)
	}
	if first.Concurrency <= 1 && !cfg.Scrub && !reflect.DeepEqual(re.Chaos, first.Chaos) {
		return fmt.Errorf("repro check failed: seed %d epoch %d produced different chaos decisions:\nfirst: %s\nrerun: %s",
			first.Seed, first.Epoch, fmtChaos(first.Chaos), fmtChaos(re.Chaos))
	}
	return nil
}

// compareTransports re-runs the soak on the in-memory transport and
// prints the abort-reason profiles side by side: the wire changes framing
// and delivery mechanics, not protocol outcomes, so the profiles should
// tell the same story.
func compareTransports(cfg experiment.SoakConfig, tcpRes *experiment.SoakResult) error {
	cfg.Transport = "memory"
	cfg.Logf = nil
	if cfg.WALDir != "" {
		dir, err := os.MkdirTemp("", "raid-soak-mem-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.WALDir = dir
	}
	memRes, err := experiment.RunSoak(cfg)
	if err != nil {
		return fmt.Errorf("in-memory comparison run: %w", err)
	}
	fmt.Printf("\nAbort profile, tcp vs memory (same seeds and schedules)\n")
	fmt.Printf("  %-52s %8s %8s\n", "reason", "tcp", "memory")
	reasons := make(map[string]bool)
	for r := range tcpRes.AbortReasons {
		reasons[r] = true
	}
	for r := range memRes.AbortReasons {
		reasons[r] = true
	}
	keys := make([]string, 0, len(reasons))
	for r := range reasons {
		keys = append(keys, r)
	}
	sort.Strings(keys)
	for _, r := range keys {
		fmt.Printf("  %-52s %8d %8d\n", r, tcpRes.AbortReasons[r], memRes.AbortReasons[r])
	}
	fmt.Printf("  %-52s %8d %8d\n", "total aborts", tcpRes.Aborted, memRes.Aborted)
	fmt.Printf("  %-52s %8d %8d\n", "committed", tcpRes.Committed, memRes.Committed)
	if !memRes.OK() {
		return fmt.Errorf("in-memory comparison run had %d audit violations", memRes.Violations)
	}
	return nil
}

func fmtChaos(m map[transport.LinkID]transport.LinkStats) string {
	var total transport.LinkStats
	for _, s := range m {
		total.Add(s)
	}
	return fmt.Sprintf("links=%d sent=%d dropped=%d dup=%d cut=%d jitter=%v",
		len(m), total.Sent, total.Dropped, total.Duplicated, total.Cut, total.JitterTotal)
}

func parseSeeds(s string) []int64 {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			fail(fmt.Errorf("bad seed %q: %w", part, err))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fail(fmt.Errorf("no seeds given"))
	}
	return out
}
