package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"time"

	"minraid/internal/experiment"
	"minraid/internal/transport"
)

// runSoak drives the chaos soak subcommand:
//
//	raid-experiments soak                      # 5 seeds, default chaos
//	raid-experiments soak -seeds 1,2,3 -txns 60 -drop 0.03
//
// Each (seed, epoch) builds a fresh cluster on a seeded chaotic network,
// runs a generated fail/recover schedule with workload traffic, and audits
// copy consistency. Exit status is non-zero on any audit violation, and —
// unless -repro=false — the first epoch is re-run afterwards to prove the
// chaos layer's determinism: same seed, identical per-link drop/dup/jitter
// decisions.
func runSoak(args []string) {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	var (
		seeds  = fs.String("seeds", "1,2,3,4,5", "comma-separated root seeds")
		epochs = fs.Int("epochs", 1, "epochs per seed")
		txns   = fs.Int("txns", 40, "transactions per epoch")
		sites  = fs.Int("sites", 4, "database sites")
		items  = fs.Int("items", 30, "database items")
		drop   = fs.Float64("drop", 0.02, "per-message drop probability on site-to-site links")
		dup    = fs.Float64("dup", 0.02, "per-message duplication probability")
		jitter = fs.Duration("jitter", 5*time.Millisecond, "max injected per-message latency (keep well below -ack)")
		delay  = fs.Duration("delay", 0, "per-hop communication cost")
		ack    = fs.Duration("ack", 50*time.Millisecond, "failure-detection ack timeout")
		repro  = fs.Bool("repro", true, "re-run the first epoch and verify identical chaos decisions")
		pct    = fs.Bool("percentiles", false, "also print p50/p95/p99 latency tables per event class")
		quiet  = fs.Bool("q", false, "suppress per-epoch progress lines")
	)
	fs.Parse(args)

	cfg := experiment.SoakConfig{
		Base: experiment.Config{
			Sites:      *sites,
			Items:      *items,
			Delay:      *delay,
			AckTimeout: *ack,
		},
		Seeds:         parseSeeds(*seeds),
		EpochsPerSeed: *epochs,
		TxnsPerEpoch:  *txns,
		Chaos: transport.ChaosConfig{
			Drop:      *drop,
			Dup:       *dup,
			MaxJitter: *jitter,
		},
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	}

	header(fmt.Sprintf("Chaos soak: %d seed(s) x %d epoch(s) x %d txns (drop=%v dup=%v jitter=%v)",
		len(cfg.Seeds), cfg.EpochsPerSeed, cfg.TxnsPerEpoch, *drop, *dup, *jitter))
	res, err := experiment.RunSoak(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Println()
	fmt.Print(res)
	for _, e := range res.Epochs {
		if !e.AuditOK {
			fmt.Printf("\nseed %d epoch %d audit detail:\n%s\n", e.Seed, e.Epoch, e.AuditDetail)
		}
	}
	percentiles(*pct, res.Percentiles)

	ok := res.OK()
	if *repro && len(res.Epochs) > 0 {
		if err := verifyRepro(cfg, res.Epochs[0]); err != nil {
			fmt.Fprintln(os.Stderr, "raid-experiments: soak:", err)
			ok = false
		} else {
			fmt.Printf("\nrepro check: seed %d epoch %d re-run reproduced identical chaos decisions on %d links\n",
				res.Epochs[0].Seed, res.Epochs[0].Epoch, len(res.Epochs[0].Chaos))
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// verifyRepro re-runs one epoch and compares the chaos layer's per-link
// decision counters against the first run's.
func verifyRepro(cfg experiment.SoakConfig, first experiment.EpochResult) error {
	cfg.Seeds = []int64{first.Seed}
	cfg.EpochsPerSeed = 1
	cfg.Logf = nil
	rerun, err := experiment.RunSoak(cfg)
	if err != nil {
		return fmt.Errorf("repro re-run: %w", err)
	}
	got := rerun.Epochs[0].Chaos
	if !reflect.DeepEqual(got, first.Chaos) {
		return fmt.Errorf("repro check failed: seed %d epoch %d produced different chaos decisions:\nfirst: %s\nrerun: %s",
			first.Seed, first.Epoch, fmtChaos(first.Chaos), fmtChaos(got))
	}
	return nil
}

func fmtChaos(m map[transport.LinkID]transport.LinkStats) string {
	var total transport.LinkStats
	for _, s := range m {
		total.Add(s)
	}
	return fmt.Sprintf("links=%d sent=%d dropped=%d dup=%d jitter=%v",
		len(m), total.Sent, total.Dropped, total.Duplicated, total.JitterTotal)
}

func parseSeeds(s string) []int64 {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			fail(fmt.Errorf("bad seed %q: %w", part, err))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fail(fmt.Errorf("no seeds given"))
	}
	return out
}
