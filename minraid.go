// Package minraid is a reproduction of the replicated-copy-control system
// of Bhargava, Noll and Sabo, "An Experimental Analysis of Replicated Copy
// Control During Site Failure and Recovery" (Purdue CSD-TR-692, 1987 /
// ICDE 1988): the stripped-down RAID prototype ("mini-RAID") implementing
// the read-one/write-all-available (ROWAA) protocol with session numbers,
// nominal session vectors, fail-locks, control transactions and copier
// transactions.
//
// The package is the public facade over the implementation in internal/:
//
//   - NewCluster builds an in-process system of N database sites plus the
//     managing site, connected by a reliable in-order memory transport
//     with configurable per-hop latency (the paper's setup).
//   - Cluster.Exec drives database transactions; Cluster.Fail and
//     Cluster.Recover script site failures and recoveries; Cluster.Audit
//     verifies cross-site consistency against the fail-lock tables.
//   - Policies ROWAA (the paper's protocol), ROWA and Quorum (baselines)
//     are selected via ClusterConfig.Policy.
//   - The workload, failure-schedule and experiment subpackages reproduce
//     the paper's workload model, scenario scripts, and every table and
//     figure of its evaluation (see EXPERIMENTS.md).
//
// Quickstart:
//
//	c, err := minraid.NewCluster(minraid.ClusterConfig{Sites: 2, Items: 50})
//	if err != nil { ... }
//	defer c.Close()
//	res, err := c.Exec(0, []minraid.Op{minraid.Write(7, []byte("hello"))})
//	_ = c.Fail(1)             // site 1 stops participating
//	res, err = c.Exec(0, ...) // processing continues on site 0
//	_, err = c.Recover(1)     // type-1 control txn; fail-locks installed
package minraid

import (
	"time"

	"minraid/internal/cluster"
	"minraid/internal/core"
	"minraid/internal/experiment"
	"minraid/internal/failure"
	"minraid/internal/metrics"
	"minraid/internal/msg"
	"minraid/internal/policy"
	"minraid/internal/storage"
	"minraid/internal/trace"
	"minraid/internal/workload"
)

// Identifier and model types.
type (
	// SiteID identifies a database site (0..Sites-1).
	SiteID = core.SiteID
	// ItemID identifies a logical data item.
	ItemID = core.ItemID
	// TxnID identifies a transaction.
	TxnID = core.TxnID
	// Op is one read or write operation of a transaction.
	Op = core.Op
	// ItemVersion is a versioned copy of a data item.
	ItemVersion = core.ItemVersion
	// Status is a site lifecycle state (up, down, recovering,
	// terminating).
	Status = core.Status
	// SessionVector is a nominal session vector.
	SessionVector = core.SessionVector
	// TxnResult is a transaction outcome as reported to the managing
	// site.
	TxnResult = msg.TxnResult
	// SiteStats is a site's counter block.
	SiteStats = msg.SiteStats
	// StatusResp is a site status snapshot.
	StatusResp = msg.StatusResp
	// AuditReport is a cross-site consistency audit result.
	AuditReport = cluster.AuditReport
	// Registry is a metrics registry (timers and counters).
	Registry = metrics.Registry
	// Policy is a replication strategy.
	Policy = policy.Policy
	// Store is a site's local database store.
	Store = storage.Store
	// Generator produces workload transactions.
	Generator = workload.Generator
	// Schedule is a failure/recovery script keyed to transaction
	// numbers.
	Schedule = failure.Schedule
	// TraceID identifies one traced operation. Database transactions
	// trace under their transaction ID; managing-site fail/recover
	// orders trace above AdminTraceBase.
	TraceID = trace.ID
	// TraceEvent is one instrumented step of a traced operation on one
	// site.
	TraceEvent = trace.Event
	// TraceSpan is the chronological event timeline of one trace ID,
	// reconstructed across sites.
	TraceSpan = trace.Span
	// TraceRecorder collects trace events cluster-wide; reach it via
	// Cluster.Tracer().
	TraceRecorder = trace.Recorder
)

// AdminTraceBase is the first trace ID used for managing-site admin
// operations (fail/recover orders).
const AdminTraceBase = trace.AdminBase

// Site states.
const (
	StatusDown        = core.StatusDown
	StatusUp          = core.StatusUp
	StatusRecovering  = core.StatusRecovering
	StatusTerminating = core.StatusTerminating
)

// Read returns a read operation on item.
func Read(item ItemID) Op { return core.Read(item) }

// Write returns a write operation setting item to value.
func Write(item ItemID, value []byte) Op { return core.Write(item, value) }

// Replication policies.

// ROWAA returns the paper's read-one/write-all-available protocol with
// session vectors and fail-locks.
func ROWAA() Policy { return policy.ROWAA{} }

// ROWA returns the strict read-one/write-all baseline: any down site
// blocks every write.
func ROWA() Policy { return policy.ROWA{} }

// Quorum returns the majority-voting baseline with version numbers.
func Quorum() Policy { return policy.Quorum{} }

// ClusterConfig parameterizes an in-process mini-RAID system. The three
// paper parameters (§1.2) are Sites, Items, and the workload generator's
// maximum transaction size.
type ClusterConfig struct {
	// Sites is the number of database sites (excluding the managing
	// site).
	Sites int
	// Items is the database size in data items.
	Items int
	// Policy selects the replication protocol; nil means ROWAA.
	Policy Policy
	// Delay is the simulated per-hop communication cost. The paper
	// measured 9ms per inter-process message; zero gives pure protocol
	// cost.
	Delay time.Duration
	// AckTimeout is the failure-detection timeout (default 250ms).
	AckTimeout time.Duration
	// BatchCopierThreshold enables the paper's proposed two-step
	// recovery when in (0, 1]: once the fail-locked fraction of a
	// recovering site drops to the threshold, the remaining stale copies
	// are refreshed in batch.
	BatchCopierThreshold float64
	// EnableType3 enables the paper's proposed type-3 control
	// transaction (backing up a last up-to-date copy).
	EnableType3 bool
	// DisableFailLockMaintenance removes the fail-lock code path
	// (experiment-1 ablation; unsafe with failures).
	DisableFailLockMaintenance bool
	// StoreFactory supplies per-site stores; nil keeps every copy in
	// memory, as the paper does. Use OpenWALStore for a durable store.
	StoreFactory func(id SiteID) (Store, error)
	// ReplicationDegree is the number of copies of each item, placed
	// round-robin (chained declustering). Zero or Sites means full
	// replication, the paper's assumption 4. Partial replication
	// requires the ROWAA policy: reads of non-hosted items fetch a fresh
	// copy from a hosting site, writes go to the hosting sites.
	ReplicationDegree int
	// ConcurrentTxns allows up to this many transactions to execute
	// interleaved at each site, serialized by distributed strict
	// two-phase locking with timeout-based deadlock resolution — the
	// concurrency-control integration the paper defers to future work.
	// Zero or 1 keeps the paper's serial processing. Requires ROWAA and
	// full replication.
	ConcurrentTxns int
}

// Cluster is a running mini-RAID system: N database sites plus the
// managing site in one process.
type Cluster = cluster.Cluster

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	var replicas *core.ReplicaMap
	if cfg.ReplicationDegree > 0 && cfg.ReplicationDegree < cfg.Sites {
		replicas = core.RoundRobinReplication(cfg.Items, cfg.Sites, cfg.ReplicationDegree)
	}
	return cluster.New(cluster.Config{
		Sites:                      cfg.Sites,
		Items:                      cfg.Items,
		Policy:                     cfg.Policy,
		Delay:                      cfg.Delay,
		AckTimeout:                 cfg.AckTimeout,
		BatchCopierThreshold:       cfg.BatchCopierThreshold,
		EnableType3:                cfg.EnableType3,
		DisableFailLockMaintenance: cfg.DisableFailLockMaintenance,
		StoreFactory:               cfg.StoreFactory,
		Replicas:                   replicas,
		ConcurrentTxns:             cfg.ConcurrentTxns,
	})
}

// NewMemStore returns an in-memory store of items copies (the paper's
// configuration), each at version 0 with the given initial value.
func NewMemStore(items int, initial []byte) Store {
	return storage.NewMemStore(items, initial)
}

// OpenWALStore opens a durable store backed by an append-only log with
// snapshot compaction in dir — the data-I/O path the paper factored out,
// available for ablation studies.
func OpenWALStore(dir string, items int) (Store, error) {
	return storage.OpenWAL(storage.WALOptions{Dir: dir, Items: items})
}

// Workload generators.

// NewUniformWorkload returns the paper's generator: 1..maxOps operations
// per transaction, equal read/write probability, uniform item choice.
func NewUniformWorkload(items, maxOps int, seed int64) *workload.Uniform {
	return workload.NewUniform(items, maxOps, seed)
}

// NewET1Workload returns a DebitCredit-style generator after the Tandem
// ET1 benchmark the paper planned to adopt.
func NewET1Workload(items int, seed int64) *workload.ET1 {
	return workload.NewET1(items, seed)
}

// NewWisconsinWorkload returns a Wisconsin-style scan/update generator.
func NewWisconsinWorkload(items int, seed int64) *workload.Wisconsin {
	return workload.NewWisconsin(items, seed)
}

// NewHotColdWorkload returns a skewed generator (80% of operations on the
// hot set).
func NewHotColdWorkload(items, hotItems, maxOps int, seed int64) *workload.HotCold {
	return workload.NewHotCold(items, hotItems, maxOps, seed)
}

// Failure schedules for the paper's experiments.

// Figure1Schedule is experiment 2's script: site 0 down for transactions
// 1-100, then recovering until all fail-locks clear (capTxns bounds the
// run).
func Figure1Schedule(capTxns int) Schedule { return failure.Figure1(capTxns) }

// Scenario1Schedule is experiment 3 scenario 1 (2 sites, alternating
// failures, 120 transactions).
func Scenario1Schedule() Schedule { return failure.Scenario1() }

// Scenario2Schedule is experiment 3 scenario 2 (4 sites, rolling single
// failures, 160 transactions).
func Scenario2Schedule() Schedule { return failure.Scenario2() }

// Experiments. Each Run* reproduces one table or figure of the paper; see
// DESIGN.md's experiment index and EXPERIMENTS.md for a captured run.
type (
	// ExperimentConfig parameterizes the experiment harness.
	ExperimentConfig = experiment.Config
	// ScheduleResult is the outcome of driving one failure schedule.
	ScheduleResult = experiment.ScheduleResult
	// PercentileReport is the tail-latency view of a run: per-event-class
	// latency histograms merged across sites plus message counts.
	PercentileReport = experiment.PercentileReport
)

// CollectPercentiles merges every site's latency histograms and the
// network's message counts; call before Close.
func CollectPercentiles(c *Cluster) *PercentileReport {
	return experiment.CollectPercentiles(c)
}

// RunSchedule drives an arbitrary failure schedule with the paper's
// workload and returns per-transaction fail-lock series and abort
// accounting.
func RunSchedule(cfg ExperimentConfig, sched Schedule, capTxns int) (*ScheduleResult, error) {
	return experiment.RunSchedule(cfg, sched, capTxns)
}

// RunOverheadFailLocks reproduces the §2.2.1 fail-lock-maintenance
// overhead table.
func RunOverheadFailLocks(cfg ExperimentConfig, warmup, measured int) (*experiment.FailLockOverheadReport, error) {
	return experiment.RunOverheadFailLocks(cfg, warmup, measured)
}

// RunOverheadControl reproduces the §2.2.2 control-transaction cost table.
func RunOverheadControl(cfg ExperimentConfig, rounds int) (*experiment.ControlOverheadReport, error) {
	return experiment.RunOverheadControl(cfg, rounds)
}

// RunOverheadCopier reproduces the §2.2.3 copier-transaction cost table.
func RunOverheadCopier(cfg ExperimentConfig, rounds int) (*experiment.CopierOverheadReport, error) {
	return experiment.RunOverheadCopier(cfg, rounds)
}

// RunFigure1 reproduces Figure 1 (data availability during failure and
// recovery).
func RunFigure1(cfg ExperimentConfig, capTxns int) (*experiment.Figure1Report, error) {
	return experiment.RunFigure1(cfg, capTxns)
}

// RunFigure2 reproduces Figure 2 (scenario 1: alternating failures on two
// sites).
func RunFigure2(cfg ExperimentConfig) (*experiment.ScenarioReport, error) {
	return experiment.RunFigure2(cfg)
}

// RunFigure3 reproduces Figure 3 (scenario 2: rolling failures over four
// sites).
func RunFigure3(cfg ExperimentConfig) (*experiment.ScenarioReport, error) {
	return experiment.RunFigure3(cfg)
}
